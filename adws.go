// Package adws provides nested (fork-join) task parallelism with
// locality-aware scheduling, implementing the schedulers of
//
//	Shiina & Taura, "Almost Deterministic Work Stealing", SC 2019
//	(extended in IEEE TPDS 33(12), 2022).
//
// A Pool runs a fixed set of workers over a declared cache hierarchy.
// Tasks spawn child tasks in task groups (the Intel-TBB-style constructs
// of the paper's Fig. 2), optionally annotated with relative work hints
// and working-set-size hints:
//
//	pool, _ := adws.NewPool(adws.WithScheduler(adws.ADWS))
//	defer pool.Close()
//	pool.Run(func(c *adws.Ctx) {
//		g := c.Group(adws.GroupHint{Work: 3, Size: totalBytes})
//		g.Spawn(1, func(c *adws.Ctx) { left() })
//		g.Spawn(2, func(c *adws.Ctx) { right() }) // twice the work
//		g.Wait()
//	})
//
// Four schedulers are available: conventional random work stealing
// (WorkStealing), single-level almost deterministic work stealing (ADWS),
// and their multi-level variants (MultiLevelWS, MultiLevelADWS) which tie
// task groups to shared caches and apply cache-hierarchy flattening.
// Work hints may be rough or omitted — ADWS fixes imbalances by dynamic
// load balancing within dominant-group steal ranges (§3.2 of the paper).
package adws

import (
	"context"
	"fmt"
	gort "runtime"

	"github.com/parlab/adws/internal/obs"
	"github.com/parlab/adws/internal/runtime"
	"github.com/parlab/adws/internal/server"
	"github.com/parlab/adws/internal/topology"
	"github.com/parlab/adws/internal/trace"
)

// Scheduler selects the scheduling algorithm of a Pool.
type Scheduler = runtime.Policy

const (
	// WorkStealing is conventional random work stealing (the paper's
	// SL-WS baseline; Cilk-Plus-like behaviour).
	WorkStealing = runtime.WS
	// ADWS is single-level almost deterministic work stealing (§3).
	ADWS = runtime.ADWS
	// MultiLevelWS applies multi-level scheduling with random work
	// stealing at every cache level (§4).
	MultiLevelWS = runtime.MLWS
	// MultiLevelADWS is multi-level ADWS with cache-hierarchy flattening
	// (§5) — the paper's best performer on memory-bound workloads.
	MultiLevelADWS = runtime.MLADWS
)

// Ctx is the execution context passed to every task body.
type Ctx = runtime.Ctx

// TaskGroup is a handle for spawning and awaiting child tasks.
type TaskGroup = runtime.TaskGroup

// GroupHint carries the per-group scheduling hints of the paper's Fig. 2b.
type GroupHint = runtime.GroupHint

// Stats aggregates scheduling counters.
type Stats = runtime.Stats

// WorkerStats is one worker's scheduling counters (Stats.PerWorker).
type WorkerStats = runtime.WorkerStats

// Tracer records per-worker scheduler events into lock-free ring buffers
// and exports them as Chrome trace-event JSON (WriteChromeTrace, viewable
// in Perfetto or chrome://tracing) or derived metrics (Summarize). Enable
// it with WithTracing; see docs/TRACING.md.
type Tracer = trace.Tracer

// TraceEvent is one recorded scheduler event.
type TraceEvent = trace.Event

// TraceSummary is the derived-metrics view of a trace.
type TraceSummary = trace.Summary

// FlightRecorder is the always-on flight recorder: a small per-worker
// event ring over the tracer's schema that keeps the recent scheduling
// past at near-zero cost and dumps it on demand (or on watchdog
// triggers) without stopping the pool. See docs/OBSERVABILITY.md.
type FlightRecorder = obs.Recorder

// FlightDump is one flight-recorder dump: the recorded event window plus
// the scheduler snapshot taken with it.
type FlightDump = obs.Dump

// Watchdog samples cheap scheduler signals and auto-dumps the flight
// recorder on stalls, deadline-miss bursts, and SLO burn.
type Watchdog = obs.Watchdog

// WatchdogConfig tunes the watchdog (WithWatchdog).
type WatchdogConfig = obs.WatchdogConfig

// WatchdogStatus is the watchdog's health summary, served by /healthz.
type WatchdogStatus = obs.Status

// SchedSnapshot is a point-in-time view of every worker's live scheduler
// state (served by /debug/sched).
type SchedSnapshot = obs.SchedSnapshot

// SchedWorkerState is one worker's row in a SchedSnapshot.
type SchedWorkerState = obs.WorkerState

// Watchdog trigger reasons (the adws_watchdog_triggers_total labels).
const (
	WatchdogWorkerStall   = obs.ReasonWorkerStall
	WatchdogDeadlineBurst = obs.ReasonDeadlineBurst
	WatchdogSLOBurn       = obs.ReasonSLOBurn
)

// JobHint carries per-job admission and placement hints: relative work
// against the other in-flight jobs, working-set size in bytes, and an
// optional queue deadline. See Pool.Submit.
type JobHint = server.Hint

// Job is one submitted root computation with its own lifecycle: Wait,
// Err, Cancel, State, and per-job scheduling Stats.
type Job = server.Job

// JobStats is a job's scheduling profile: queue/run timing, the worker
// fraction it was placed on, and its slice of the steal/migration
// counters.
type JobStats = server.Stats

// JobState is a job's lifecycle state.
type JobState = server.State

// Counters are a pool's monotonic admission counters: jobs submitted,
// fast-rejected, and finished by terminal state.
type Counters = server.Counters

// Job lifecycle states.
const (
	JobQueued   = server.Queued
	JobRunning  = server.Running
	JobDone     = server.Done
	JobFailed   = server.Failed
	JobCanceled = server.Canceled
)

// Admission-control errors returned by Pool.Submit.
var (
	// ErrOverloaded is the fast-reject: the admission queue is full.
	ErrOverloaded = server.ErrOverloaded
	// ErrDraining rejects submissions while Pool.Drain is in progress.
	ErrDraining = server.ErrDraining
	// ErrPoolClosed rejects submissions after Pool.Close.
	ErrPoolClosed = server.ErrClosed
	// ErrRateLimited fast-rejects a submission whose tenant exhausted its
	// token bucket (SLO admission; see WithTenantRateLimit).
	ErrRateLimited = server.ErrRateLimited
	// ErrUnknownClass rejects a submission naming a priority class the
	// pool was not configured with.
	ErrUnknownClass = server.ErrUnknownClass
)

// Admission policies for WithAdmissionPolicy.
const (
	// AdmitFIFO dispatches strictly in submission order (default).
	AdmitFIFO = server.AdmitFIFO
	// AdmitSLO dispatches by priority class with aging, earliest deadline
	// first within a class, shortest job (by work hint) as tie-break, and
	// enforces per-tenant token-bucket rate limits at submit.
	AdmitSLO = server.AdmitSLO
)

// Built-in priority class names (highest priority first); the default
// class for jobs that leave JobHint.Class empty is ClassStandard.
const (
	ClassInteractive = server.ClassInteractive
	ClassStandard    = server.ClassStandard
	ClassBatch       = server.ClassBatch
)

// CacheLevel describes one level of a machine's cache hierarchy, from the
// outermost shared caches to the innermost private ones.
type CacheLevel struct {
	// Fanout is the number of caches at this level under each cache of
	// the previous level.
	Fanout int
	// CapacityBytes is the per-cache capacity.
	CapacityBytes int64
}

type config struct {
	scheduler   Scheduler
	machine     *topology.Machine
	seed        uint64
	pinThreads  bool
	traceCap    int
	frCap       int
	noWatchdog  bool
	wd          WatchdogConfig
	maxInFlight int
	maxQueue    int
	admission   string
	tenantRate  float64
	tenantBurst float64
	err         error
}

// Option configures NewPool.
type Option func(*config)

// WithScheduler selects the scheduling algorithm (default WorkStealing).
func WithScheduler(s Scheduler) Option {
	return func(c *config) { c.scheduler = s }
}

// WithWorkers creates a flat machine of n workers sharing one cache. Use
// WithHierarchy to describe real cache topologies.
func WithWorkers(n int) Option {
	return func(c *config) {
		if n <= 0 {
			c.err = fmt.Errorf("adws: worker count %d must be positive", n)
			return
		}
		c.machine = topology.Flat(n, 32<<20, 1<<20)
	}
}

// WithHierarchy declares the machine's cache hierarchy: levels from the
// outermost shared caches down to the private per-worker caches (the last
// level); one worker is created per private cache. numaSplit names the
// level whose caches each own a NUMA node (0 for a single node).
func WithHierarchy(levels []CacheLevel, numaSplit int) Option {
	return func(c *config) {
		ls := make([]topology.Level, len(levels))
		for i, l := range levels {
			ls[i] = topology.Level{Fanout: l.Fanout, Capacity: l.CapacityBytes}
		}
		m, err := topology.New("user", ls, numaSplit)
		if err != nil {
			c.err = err
			return
		}
		c.machine = m
	}
}

// WithSeed fixes the victim-selection seed (default 1).
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed }
}

// WithPinnedThreads locks each worker goroutine to an OS thread, the
// paper's worker-per-core configuration.
func WithPinnedThreads() Option {
	return func(c *config) { c.pinThreads = true }
}

// WithTracing enables the scheduler event tracer with the given per-worker
// ring capacity in events (<= 0 uses a default of 256k events per worker).
// Retrieve the tracer with Pool.Tracer() after the traced Runs complete.
// Without this option tracing costs nothing beyond one nil check per event
// site.
func WithTracing(eventsPerWorker int) Option {
	return func(c *config) {
		c.traceCap = eventsPerWorker
		if c.traceCap <= 0 {
			c.traceCap = trace.DefaultCapacity
		}
	}
}

// WithFlightRecorder sets the per-worker flight-recorder ring capacity
// in events. The recorder is ON BY DEFAULT (capacity 4096 per worker);
// this option only resizes it. A negative capacity disables the recorder
// entirely — the watchdog then still counts triggers but dumps nothing.
// Unlike WithTracing the recorder keeps only shallow task spans (group
// depth <= 1) plus every steal, migration, park, wake, and boundary
// event, which is what keeps its always-on cost near the nil-tracer
// floor. See docs/OBSERVABILITY.md.
func WithFlightRecorder(eventsPerWorker int) Option {
	return func(c *config) { c.frCap = eventsPerWorker }
}

// WithWatchdog overrides the stall/SLO watchdog's tuning (sampling
// interval, stall threshold, deadline-burst window, burn threshold, dump
// directory). The watchdog is ON BY DEFAULT with obs defaults; zero
// fields keep them.
func WithWatchdog(cfg WatchdogConfig) Option {
	return func(c *config) { c.wd = cfg }
}

// WithoutWatchdog disables the watchdog sampling goroutine.
func WithoutWatchdog() Option {
	return func(c *config) { c.noWatchdog = true }
}

// WithAdmission configures the job-serving admission control: the maximum
// number of concurrently running jobs and the depth of the FIFO admission
// queue beyond which Submit fast-rejects with ErrOverloaded. Zero values
// keep the defaults (one running job per worker; queue 4× that).
func WithAdmission(maxInFlight, maxQueue int) Option {
	return func(c *config) {
		if maxInFlight < 0 || maxQueue < 0 {
			c.err = fmt.Errorf("adws: admission limits (%d, %d) must not be negative",
				maxInFlight, maxQueue)
			return
		}
		c.maxInFlight = maxInFlight
		c.maxQueue = maxQueue
	}
}

// WithAdmissionPolicy selects the admission policy: AdmitFIFO (default)
// or AdmitSLO. Under AdmitSLO, jobs declare a priority class and
// optional tenant via JobHint; dispatch order is class priority with
// aging, then earliest deadline, then smallest work hint.
func WithAdmissionPolicy(policy string) Option {
	return func(c *config) {
		switch policy {
		case AdmitFIFO, AdmitSLO:
			c.admission = policy
		default:
			c.err = fmt.Errorf("adws: unknown admission policy %q", policy)
		}
	}
}

// WithTenantRateLimit bounds each tenant's submit rate under AdmitSLO:
// tenants accrue rate tokens/second up to burst, one token per admitted
// job; an empty bucket fast-rejects with ErrRateLimited. rate <= 0
// disables limiting (the default); burst <= 0 defaults to max(1, rate).
func WithTenantRateLimit(rate, burst float64) Option {
	return func(c *config) {
		c.tenantRate = rate
		c.tenantBurst = burst
	}
}

// Pool is a running worker pool. Create one per process (or per disjoint
// machine partition), reuse it across computations, and Close it when
// done.
type Pool struct {
	p      *runtime.Pool
	srv    *server.Server
	tracer *trace.Tracer
	reg    *MetricsRegistry
	flight *obs.Recorder
	wd     *obs.Watchdog
}

// NewPool starts a pool. Without options it runs conventional work
// stealing over GOMAXPROCS workers.
func NewPool(opts ...Option) (*Pool, error) {
	cfg := config{seed: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}
	if cfg.machine == nil {
		cfg.machine = topology.Flat(gort.GOMAXPROCS(0), 32<<20, 1<<20)
	}
	var tr *trace.Tracer
	if cfg.traceCap > 0 {
		tr = trace.New(cfg.machine.NumWorkers(), cfg.traceCap)
	}
	var fr *obs.Recorder
	if cfg.frCap >= 0 {
		fr = obs.NewRecorder(obs.Config{
			Workers:  cfg.machine.NumWorkers(),
			Capacity: cfg.frCap,
		})
	}
	reg, rtm := newPoolRegistry(cfg.machine.NumWorkers())
	p := runtime.NewPool(runtime.Config{
		Machine:    cfg.machine,
		Policy:     cfg.scheduler,
		Seed:       cfg.seed,
		PinThreads: cfg.pinThreads,
		Tracer:     tr,
		Flight:     fr,
		Metrics:    rtm,
	})
	sm := server.NewMetrics(reg, nil)
	srv := server.New(p, server.Config{
		MaxInFlight:     cfg.maxInFlight,
		MaxQueue:        cfg.maxQueue,
		AdmissionPolicy: cfg.admission,
		TenantRate:      cfg.tenantRate,
		TenantBurst:     cfg.tenantBurst,
		Metrics:         sm,
	})
	pool := &Pool{p: p, srv: srv, tracer: tr, reg: reg, flight: fr}
	if !cfg.noWatchdog {
		pool.wd = obs.NewWatchdog(fr, obs.Signals{
			Sched:            p.SchedSnapshot,
			QueuedJobs:       func() int { q, _ := srv.InFlight(); return q },
			OldestQueueAgeNS: func() int64 { return int64(srv.OldestQueueAge()) },
			DeadlineExpired:  func() int64 { return sm.Expired.Value() },
			SLOBurn:          burnSignal(srv, sm),
		}, cfg.wd)
		pool.wd.Start()
	}
	registerPoolMetrics(reg, pool)
	return pool, nil
}

// burnSignal builds the watchdog's SLO-burn closure: the fraction of
// jobs that reached a terminal outcome since the previous sample and
// expired their deadline. Only the watchdog goroutine calls it, so the
// previous-sample state needs no locking.
func burnSignal(srv *server.Server, sm *server.Metrics) func() float64 {
	var lastExp, lastDone int64
	return func() float64 {
		exp := sm.Expired.Value()
		c := srv.Counters()
		done := c.Completed + c.Failed + c.Canceled + c.Rejected
		dExp, dDone := exp-lastExp, done-lastDone
		lastExp, lastDone = exp, done
		if dExp <= 0 || dDone <= 0 {
			return 0
		}
		if dExp >= dDone {
			return 1
		}
		return float64(dExp) / float64(dDone)
	}
}

// Run executes fn as the root task and blocks until every transitively
// spawned and awaited task completes. Concurrent Run calls are safe but
// serialize, each executing over the whole pool; use Submit to serve
// independent computations concurrently. Run panics if the pool is
// closed.
func (p *Pool) Run(fn func(*Ctx)) { p.p.Run(fn) }

// Submit admits fn as a new job on the pool's job-serving layer and
// returns without waiting. Submission is goroutine-safe: many clients may
// share one pool. Jobs pass a bounded FIFO admission queue (ErrOverloaded
// fast-reject when full, ErrDraining during Drain, ErrPoolClosed after
// Close; see WithAdmission) and are placed as root task groups on a
// worker sub-range divided among the in-flight jobs in proportion to
// their Work hints — the same hint-guided division ADWS applies to
// sibling tasks. fn's returned error (or recovered panic) becomes
// Job.Err; ctx and the hint deadline cancel the job while it waits in
// the queue (running jobs are not preempted — bodies may watch
// Job.Context to stop cooperatively).
//
// A single in-flight job over the full pool schedules exactly like Run;
// see docs/SERVER.md for the determinism caveat under concurrent jobs.
func (p *Pool) Submit(ctx context.Context, fn func(*Ctx) error, h JobHint) (*Job, error) {
	return p.srv.Submit(ctx, fn, h)
}

// Drain stops admitting jobs and waits until every queued and running
// job completed, or ctx is done. Call it before Close for a graceful
// shutdown.
func (p *Pool) Drain(ctx context.Context) error { return p.srv.Drain(ctx) }

// Job returns a submitted job by ID, if still retained (terminal jobs are
// kept up to a bounded history).
func (p *Pool) Job(id int64) (*Job, bool) { return p.srv.Job(id) }

// Jobs returns the retained jobs in submission order.
func (p *Pool) Jobs() []*Job { return p.srv.Jobs() }

// InFlight returns the current admission queue depth and running-job
// count.
func (p *Pool) InFlight() (queued, running int) { return p.srv.InFlight() }

// NumWorkers returns the pool size.
func (p *Pool) NumWorkers() int { return p.p.NumWorkers() }

// Scheduler returns the pool's scheduling algorithm.
func (p *Pool) Scheduler() Scheduler { return p.p.Policy() }

// Stats returns scheduling counters accumulated since pool creation.
func (p *Pool) Stats() Stats { return p.p.Stats() }

// Counters returns the pool's monotonic admission counters.
func (p *Pool) Counters() Counters { return p.srv.Counters() }

// AdmissionPolicy returns the pool's effective admission policy
// (AdmitFIFO or AdmitSLO).
func (p *Pool) AdmissionPolicy() string { return p.srv.Config().AdmissionPolicy }

// Classes returns the pool's priority-class list, highest priority
// first.
func (p *Pool) Classes() []string { return p.srv.Classes() }

// ClassCounters returns per-priority-class admission counters.
func (p *Pool) ClassCounters() map[string]Counters { return p.srv.ClassCounters() }

// QueuedByClass returns the live admission-queue depth per class.
func (p *Pool) QueuedByClass() map[string]int { return p.srv.QueuedByClass() }

// JainByClass returns the Jain fairness index over per-tenant mean
// end-to-end latency within each class (1 = perfectly fair; classes
// without completed jobs are omitted).
func (p *Pool) JainByClass() map[string]float64 { return p.srv.JainByClass() }

// Tracer returns the pool's event tracer, or nil unless WithTracing was
// given. Read it (Events, Summarize, WriteChromeTrace) only while no Run
// is active.
func (p *Pool) Tracer() *Tracer { return p.tracer }

// FlightRecorder returns the pool's always-on flight recorder, or nil if
// WithFlightRecorder disabled it.
func (p *Pool) FlightRecorder() *FlightRecorder { return p.flight }

// Watchdog returns the pool's stall/SLO watchdog, or nil if
// WithoutWatchdog disabled it.
func (p *Pool) Watchdog() *Watchdog { return p.wd }

// SchedSnapshot returns a live view of every worker's scheduler state.
// Safe to call at any time, including under full load: rows are
// assembled from lock-free reads and are individually accurate but not
// mutually atomic.
func (p *Pool) SchedSnapshot() SchedSnapshot { return p.p.SchedSnapshot() }

// DumpFlight cuts the flight recorder into a dump tagged with reason,
// attaching a fresh scheduler snapshot. It returns nil when the recorder
// is disabled. Dumping is destructive — the returned window is consumed
// from the rings — and safe while the pool runs.
func (p *Pool) DumpFlight(reason string) *FlightDump {
	if p.flight == nil {
		return nil
	}
	snap := p.p.SchedSnapshot()
	return p.flight.Dump(reason, -1, &snap)
}

// Metrics returns the pool's metrics registry. Unlike the tracer it is
// always on (recording is lock-free and allocation-free; see
// docs/METRICS.md) and may be rendered with WriteText at any time,
// including under concurrent job load.
func (p *Pool) Metrics() *MetricsRegistry { return p.reg }

// Close stops admission and the workers. Outstanding Runs and jobs must
// have completed (Drain first for a graceful shutdown); Run and Submit
// after Close panic and error respectively.
func (p *Pool) Close() {
	if p.wd != nil {
		p.wd.Stop()
	}
	p.srv.Close()
	p.p.Close()
}
