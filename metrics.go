package adws

import (
	"strconv"
	"sync"

	"github.com/parlab/adws/internal/metrics"
	"github.com/parlab/adws/internal/obs"
	"github.com/parlab/adws/internal/runtime"
	"github.com/parlab/adws/internal/server"
)

// MetricsRegistry renders the pool's metrics as Prometheus text
// exposition (format 0.0.4): the scheduling counters, the admission
// state, and the latency histograms recorded by the runtime (park,
// steal-probe, wake-to-run) and the job server (queue-wait, service,
// end-to-end). Obtain a pool's registry with Pool.Metrics and render
// with WriteText; see docs/METRICS.md for the metric catalogue.
type MetricsRegistry = metrics.Registry

// newPoolRegistry builds the registry and the runtime recording surface.
// The runtime histograms must exist before the runtime pool (workers
// record into per-worker shards from their first park), so this runs
// first and registerPoolMetrics completes the wiring once the pool and
// server objects exist.
func newPoolRegistry(workers int) (*metrics.Registry, *runtime.Metrics) {
	reg := metrics.NewRegistry()
	rtm := &runtime.Metrics{
		Park: reg.Histogram("adws_park_seconds",
			"Worker blocking-park duration, park to wake.", workers),
		StealAttempt: reg.Histogram("adws_steal_attempt_seconds",
			"Latency of individual steal victim probes.", workers),
		WakeToRun: reg.Histogram("adws_wake_to_run_seconds",
			"Park wakeup to first task obtained (spurious wakes excluded).", workers),
	}
	return reg, rtm
}

// registerPoolMetrics registers the render-time families: every metric
// name the daemon's hand-rolled /metrics used to emit (kept stable), the
// per-worker vectors (now with proper TYPE headers), and the admission
// outcome counters. All of them read from one snapshot taken per render
// by the OnRender hook, so adws_jobs_queued and adws_jobs_running come
// from a single InFlight() call and the worker vectors from a single
// Stats() call.
func registerPoolMetrics(reg *metrics.Registry, p *Pool) {
	var mu sync.Mutex
	var st Stats
	var queued, running int
	var ctrs server.Counters
	var queuedByClass map[string]int
	var classCtrs map[string]server.Counters
	var jain map[string]float64
	reg.OnRender(func() {
		s := p.p.Stats()
		q, r := p.srv.InFlight()
		c := p.srv.Counters()
		qbc := p.srv.QueuedByClass()
		cc := p.srv.ClassCounters()
		jn := p.srv.JainByClass()
		mu.Lock()
		st, queued, running, ctrs = s, q, r, c
		queuedByClass, classCtrs, jain = qbc, cc, jn
		mu.Unlock()
	})
	get := func(f func() float64) func() float64 {
		return func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return f()
		}
	}
	reg.CounterFunc("adws_tasks_total", "Tasks executed.",
		get(func() float64 { return float64(st.Tasks) }))
	reg.CounterFunc("adws_steals_total", "Successful steals.",
		get(func() float64 { return float64(st.Steals) }))
	reg.CounterFunc("adws_steal_attempts_total", "Steal victim probes.",
		get(func() float64 { return float64(st.StealAttempts) }))
	reg.CounterFunc("adws_migrations_total", "Deterministic task migrations.",
		get(func() float64 { return float64(st.Migrations) }))
	reg.CounterFunc("adws_parks_total", "Worker blocking parks.",
		get(func() float64 { return float64(st.Parks) }))
	reg.CounterFunc("adws_wakes_total", "Wake tokens consumed by workers.",
		get(func() float64 { return float64(st.Wakes) }))
	reg.CounterFunc("adws_busy_seconds_total", "Wall-clock task-execution time summed over workers.",
		get(func() float64 { return float64(st.BusyNS) / 1e9 }))
	reg.CounterFunc("adws_idle_seconds_total", "Wall-clock work-search time summed over workers.",
		get(func() float64 { return float64(st.IdleNS) / 1e9 }))
	reg.GaugeFunc("adws_workers", "Pool worker count.",
		func() float64 { return float64(p.p.NumWorkers()) })
	workerVec := func(field func(WorkerStats) int64) func() []metrics.Labeled {
		return func() []metrics.Labeled {
			mu.Lock()
			defer mu.Unlock()
			out := make([]metrics.Labeled, len(st.PerWorker))
			for i, ws := range st.PerWorker {
				out[i] = metrics.Labeled{
					Label: strconv.Itoa(ws.Worker),
					Value: float64(field(ws)),
				}
			}
			return out
		}
	}
	reg.CounterVecFunc("adws_worker_tasks_total", "Tasks executed per worker.",
		"worker", workerVec(func(ws WorkerStats) int64 { return ws.Tasks }))
	reg.CounterVecFunc("adws_worker_steals_total", "Successful steals per worker.",
		"worker", workerVec(func(ws WorkerStats) int64 { return ws.Steals }))
	reg.GaugeFunc("adws_jobs_queued", "Jobs waiting in the admission queue.",
		get(func() float64 { return float64(queued) }))
	reg.GaugeFunc("adws_jobs_running", "Jobs currently running.",
		get(func() float64 { return float64(running) }))
	reg.CounterFunc("adws_jobs_submitted_total", "Jobs admitted (queued or dispatched).",
		get(func() float64 { return float64(ctrs.Submitted) }))
	reg.CounterFunc("adws_jobs_completed_total", "Jobs that reached Done.",
		get(func() float64 { return float64(ctrs.Completed) }))
	reg.CounterFunc("adws_jobs_failed_total", "Jobs that reached Failed.",
		get(func() float64 { return float64(ctrs.Failed) }))
	reg.CounterFunc("adws_jobs_canceled_total", "Jobs canceled before or while running.",
		get(func() float64 { return float64(ctrs.Canceled) }))
	if wd := p.wd; wd != nil {
		reasons := obs.Reasons()
		reg.CounterVecFunc("adws_watchdog_triggers_total",
			"Watchdog firings by reason (worker_stall, deadline_burst, slo_burn).",
			"reason", func() []metrics.Labeled {
				t := wd.Triggers()
				out := make([]metrics.Labeled, len(reasons))
				for i, r := range reasons {
					out[i] = metrics.Labeled{Label: r, Value: float64(t[r])}
				}
				return out
			})
	}
	if fr := p.flight; fr != nil {
		reg.CounterFunc("adws_flight_recorder_drops_total",
			"Flight-recorder events lost to ring wraparound (its normal steady state).",
			func() float64 { return float64(fr.Drops()) })
	}

	// Per-priority-class breakdown. The class list is fixed at pool
	// creation, so the label sets are stable across renders; the Jain
	// gauge omits classes without completed jobs.
	classes := p.srv.Classes()
	reg.GaugeMultiFunc("adws_jobs_queued_by_class",
		"Jobs waiting in the admission queue, by priority class.",
		func() []metrics.MultiLabeled {
			mu.Lock()
			defer mu.Unlock()
			out := make([]metrics.MultiLabeled, len(classes))
			for i, cl := range classes {
				out[i] = metrics.MultiLabeled{
					Labels: []metrics.Label{{Name: "class", Value: cl}},
					Value:  float64(queuedByClass[cl]),
				}
			}
			return out
		})
	reg.CounterMultiFunc("adws_jobs_outcomes_total",
		"Job admission outcomes by priority class.",
		func() []metrics.MultiLabeled {
			mu.Lock()
			defer mu.Unlock()
			out := make([]metrics.MultiLabeled, 0, 5*len(classes))
			for _, cl := range classes {
				cc := classCtrs[cl]
				for _, o := range []struct {
					outcome string
					n       int64
				}{
					{"submitted", cc.Submitted}, {"rejected", cc.Rejected},
					{"completed", cc.Completed}, {"failed", cc.Failed},
					{"canceled", cc.Canceled},
				} {
					out = append(out, metrics.MultiLabeled{
						Labels: []metrics.Label{
							{Name: "class", Value: cl},
							{Name: "outcome", Value: o.outcome},
						},
						Value: float64(o.n),
					})
				}
			}
			return out
		})
	reg.GaugeMultiFunc("adws_jobs_fairness_jain",
		"Jain fairness index over per-tenant mean e2e latency, by class (1 = fair).",
		func() []metrics.MultiLabeled {
			mu.Lock()
			defer mu.Unlock()
			out := make([]metrics.MultiLabeled, 0, len(jain))
			for _, cl := range classes {
				v, ok := jain[cl]
				if !ok {
					continue
				}
				out = append(out, metrics.MultiLabeled{
					Labels: []metrics.Label{{Name: "class", Value: cl}},
					Value:  v,
				})
			}
			return out
		})
}
