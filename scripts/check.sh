#!/usr/bin/env bash
# check.sh — the repo's one-stop verification gate.
#
# Runs, in order:
#   1. go vet ./...                                  static checks
#   2. go build ./...                                everything compiles
#   3. go test ./...                                 full test suite
#   4. go test -race internal/runtime + internal/trace + internal/server
#      + cmd/adwsd
#      The runtime's lock-free deques, the tracer's per-worker ring
#      buffers, and the job-serving admission path are the places where a
#      data race would silently corrupt results; the race detector is the
#      authority on all of them.
#   5. go test -run='^$' -bench=. -benchtime=1x ./...   benchmark smoke
#      One iteration of every benchmark, so a refactor that breaks a
#      benchmark harness (or deadlocks the parked-pool submit path) fails
#      here instead of at measurement time.
#
# Usage: scripts/check.sh   (from the repo root, or anywhere inside it)
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./internal/runtime/... ./internal/trace/... ./internal/server/... ./cmd/adwsd/..."
go test -race ./internal/runtime/... ./internal/trace/... ./internal/server/... ./cmd/adwsd/...

echo "==> go test -run='^\$' -bench=. -benchtime=1x ./...   (benchmark smoke)"
go test -run='^$' -bench=. -benchtime=1x ./...

echo "OK: all checks passed"
