#!/usr/bin/env bash
# check.sh — the repo's one-stop verification gate.
#
# Runs, in order:
#   1. gofmt -l .                                    formatting gate
#      (internal/lint/testdata is excluded: fixtures pin exact line/column
#      positions and deliberately odd layouts)
#   2. scripts/lint.sh                               go vet + adwsvet
#      adwsvet (cmd/adwsvet, docs/LINT.md) enforces the scheduler's
#      concurrency invariants: hot-path purity and allocation-freedom,
#      cache-line padding, trace-event switch exhaustiveness, lock
#      annotations, atomic-access discipline, and the global lock-rank
#      order. Findings not recorded in lint-baseline.json fail the gate.
#   3. go build ./...                                everything compiles
#   4. go test ./...                                 full test suite
#   5. go test -race internal/runtime + internal/trace + internal/server
#      + internal/cluster + cmd/adwsd
#      The runtime's lock-free deques, the tracer's per-worker ring
#      buffers, the job-serving admission path, and the cluster's routing
#      ledger are the places where a data race would silently corrupt
#      results; the race detector is the authority on all of them.
#   6. go test -run='^$' -bench=. -benchtime=1x ./...   benchmark smoke
#      One iteration of every benchmark, so a refactor that breaks a
#      benchmark harness (or deadlocks the parked-pool submit path) fails
#      here instead of at measurement time.
#   7. ADWS_BENCH_SMOKE=1 flight-recorder overhead gate
#      Measures the spawn-heavy tree with and without the always-on
#      flight recorder (internal/runtime TestFlightOverheadSmoke) and
#      fails if the recorder-on run exceeds a generous 1.5x budget; the
#      precise <=3% acceptance numbers live in results/flight_recorder.txt.
#   8. scripts/bench.sh -smoke                       trajectory smoke
#      Schema-checks every committed BENCH_*.json perf-trajectory point
#      and does one tiny adwsload run whose /metrics exposition is
#      re-parsed with the strict internal parser, so a registry change
#      that breaks scrapes or the committed trajectory fails here.
#
# Watchdog flight-recorder dumps written during the run (any test whose
# watchdog fires without an explicit DumpDir) land in $ADWS_FR_DIR,
# defaulting to ./fr-dumps here so CI can upload them as artifacts when
# a step fails.
#
# Usage: scripts/check.sh   (from the repo root, or anywhere inside it)
set -euo pipefail

cd "$(dirname "$0")/.."

export ADWS_FR_DIR="${ADWS_FR_DIR:-$PWD/fr-dumps}"
mkdir -p "$ADWS_FR_DIR"

echo "==> gofmt -l . (excluding internal/lint/testdata)"
fmt_out=$(gofmt -l . | grep -v 'internal/lint/testdata/' || true)
if [ -n "$fmt_out" ]; then
    echo "gofmt needed on:"
    echo "$fmt_out"
    exit 1
fi

scripts/lint.sh

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./internal/runtime/... ./internal/trace/... ./internal/server/... ./internal/cluster/... ./cmd/adwsd/..."
go test -race ./internal/runtime/... ./internal/trace/... ./internal/server/... ./internal/cluster/... ./cmd/adwsd/...

echo "==> go test -run='^\$' -bench=. -benchtime=1x ./...   (benchmark smoke)"
go test -run='^$' -bench=. -benchtime=1x ./...

echo "==> ADWS_BENCH_SMOKE=1 flight-recorder overhead gate"
ADWS_BENCH_SMOKE=1 go test ./internal/runtime/ -run TestFlightOverheadSmoke -count=1

scripts/bench.sh -smoke

echo "OK: all checks passed"
