#!/usr/bin/env bash
# bench.sh — produce (or, with -smoke, validate) one committed perf
# trajectory point.
#
# Full mode (no args) produces BENCH_NNNN.json in the repo root, where
# NNNN is one past the highest committed point:
#
#   1. adwsbench -figure run: one traced reference simulation
#      (twolevel16, quicksort, sl-adws) whose -json result becomes the
#      point's `sim` half — simulated time, steal/migration counts,
#      task-span and steal-distance quantiles. Deterministic: the same
#      seed simulates the same schedule on any machine.
#   2. adwsload: a real run — 64 quicksort jobs through an 8-worker
#      ADWS pool — whose registry histograms (queue-wait, service, e2e,
#      park, steal-attempt, wake-to-run) become the `serve` half.
#      Machine-dependent: comparable across points only on like
#      hardware, which is why the sim half exists.
#   3. The same invocation also drives the routing comparison that
#      becomes the `cluster` half: an identical 7-key repeated stream
#      through a 2-pool cluster under affinity and round-robin, so each
#      point records the warm-hit-rate and e2e-p99 gap between locality
#      routing and striding. 7 keys on 2 pools is deliberately coprime:
#      striding can never line repeats up with their warm pool.
#   4. The same invocation also drives the admission comparison that
#      becomes the `admission` half: a 40-job batch backlog submitted
#      ahead of a 24-job interactive cohort, run once under FIFO and
#      once under SLO admission, so each point records the interactive
#      p99 the priority/EDF ordering buys back from the backlog and the
#      per-class Jain fairness index.
#
# Smoke mode (-smoke, run by check.sh and CI) never measures: it
# schema-checks every committed BENCH_*.json via benchfmt.Validate and
# does one tiny adwsload run — including a tiny fifo-vs-slo admission
# comparison — whose rendered /metrics exposition is re-parsed with the
# strict internal parser. Fails on any malformed committed point or
# invalid exposition.
#
# Usage: scripts/bench.sh [-smoke]
set -euo pipefail

cd "$(dirname "$0")/.."

if [ "${1:-}" = "-smoke" ]; then
    echo "==> bench smoke: validate committed trajectory points"
    if compgen -G "BENCH_*.json" >/dev/null; then
        go run ./cmd/adwsload -validate 'BENCH_*.json'
    else
        echo "no BENCH_*.json committed yet; skipping validation"
    fi
    echo "==> bench smoke: tiny serve run + exposition self-check"
    go run ./cmd/adwsload -smoke
    echo "OK: bench smoke passed"
    exit 0
fi

# Next point number: one past the highest committed BENCH_NNNN.json.
# Points are numbered by the PR that produced them; the trajectory
# started at PR 6, so the first point is BENCH_0006.json.
last=$({ ls BENCH_*.json 2>/dev/null || true; } | sed -E 's/^BENCH_([0-9]+)\.json$/\1/' | sort -n | tail -1)
next=$(printf '%04d' $((10#${last:-5} + 1)))
out="BENCH_${next}.json"
sim=$(mktemp /tmp/adws_sim.XXXXXX.json)
trap 'rm -f "$sim"' EXIT

echo "==> reference simulation (adwsbench -figure run)"
go run ./cmd/adwsbench -figure run -machine twolevel16 -bench quicksort \
    -mode sl-adws -json "$sim"

echo "==> serve measurement + cluster routing + admission comparison (adwsload) -> $out"
go run ./cmd/adwsload -workers 8 -sched adws -jobs 64 -workload quicksort \
    -seed 1 -pools 2 -keys 7 -compare affinity,round-robin \
    -admcompare fifo,slo -cohorts "batch:40:200000,interactive:24:20000" -tenants 2 \
    -sim "$sim" -json "$out" -id "$next"

go run ./cmd/adwsload -validate "$out"
echo "OK: wrote $out"
