#!/usr/bin/env bash
# lint.sh — the repo's static-analysis gate.
#
# Runs, in order:
#   1. go vet ./...              the standard toolchain checks
#   2. go run ./cmd/adwsvet ./...   the project's own analyzers (see
#      docs/LINT.md): hotpath, atomicpad, evexhaustive, lockedby,
#      atomiconly, lockorder, hotalloc — the scheduler's concurrency
#      invariants that go vet cannot see.
#
# Self-check: ./... includes cmd/adwsvet and internal/lint themselves, so
# the suite runs over its own sources every time (go list skips only the
# testdata fixtures, which are deliberately violation-laden).
#
# Baseline: when lint-baseline.json exists at the repo root, findings
# recorded in it are suppressed (burn-down list; regenerate with
# `go run ./cmd/adwsvet -writebaseline lint-baseline.json ./...`). Any
# NON-baselined finding still fails the gate. The tree is currently
# clean, so no baseline file is committed.
#
# Usage: scripts/lint.sh   (from the repo root, or anywhere inside it)
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> adwsvet ./..."
if [ -f lint-baseline.json ]; then
    go run ./cmd/adwsvet -baseline lint-baseline.json ./...
else
    go run ./cmd/adwsvet ./...
fi
