#!/usr/bin/env bash
# lint.sh — the repo's static-analysis gate.
#
# Runs, in order:
#   1. go vet ./...              the standard toolchain checks
#   2. go run ./cmd/adwsvet ./...   the project's own analyzers (see
#      docs/LINT.md): hotpath, atomicpad, evexhaustive, lockedby — the
#      scheduler's concurrency invariants that go vet cannot see.
#
# Usage: scripts/lint.sh   (from the repo root, or anywhere inside it)
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> adwsvet ./..."
go run ./cmd/adwsvet ./...
